package realhf

// The JSON wire codec: ExperimentConfig and ClusterConfig marshal to their
// canonical, defaults-applied form and unmarshal strictly, and execution
// plans travel as the SavePlan serialization. The contract the plan service
// (internal/serve) is built on:
//
//	json.Marshal(cfg) == json.Marshal(decode(json.Marshal(cfg)))
//
// and decode(json.Marshal(cfg)) has the same problemKey and fingerprint as
// cfg.withDefaults() — bit-stably, so a config that crosses the wire any
// number of times keys the same plan cache, cost cache and coalescing
// flight as the original.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// interfaceTypeNames mirrors InterfaceType.String; the wire format uses the
// paper's names, not Go enum ordinals, so stored configs survive enum
// reordering.
var interfaceTypeNames = map[string]InterfaceType{
	"GENERATE":   Generate,
	"INFERENCE":  Inference,
	"TRAIN_STEP": TrainStep,
}

// MarshalJSON encodes the interface type by name ("GENERATE", "INFERENCE",
// "TRAIN_STEP").
func (t InterfaceType) MarshalJSON() ([]byte, error) {
	switch t {
	case Generate, Inference, TrainStep:
		return json.Marshal(t.String())
	}
	return nil, fmt.Errorf("realhf: cannot marshal %v: %w", t, ErrInvalidConfig)
}

// UnmarshalJSON decodes an interface type name, case-insensitively.
func (t *InterfaceType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("realhf: interface type must be a string: %w", ErrInvalidConfig)
	}
	v, ok := interfaceTypeNames[strings.ToUpper(s)]
	if !ok {
		return fmt.Errorf("realhf: unknown interface type %q (have GENERATE, INFERENCE, TRAIN_STEP): %w",
			s, ErrInvalidConfig)
	}
	*t = v
	return nil
}

// experimentConfigWire drops ExperimentConfig's methods so the codec can
// reuse the stock struct encoding without recursing.
type experimentConfigWire ExperimentConfig

// MarshalJSON emits the canonical wire form: package defaults applied
// (withDefaults — session defaults like ClusterConfig.Nodes are a Planner
// property, applied by Canonicalize), every fingerprint-relevant field
// present, SearchTime in integer nanoseconds. Marshaling is stable: two
// configs with equal canonical forms produce byte-identical JSON.
func (c ExperimentConfig) MarshalJSON() ([]byte, error) {
	return json.Marshal(experimentConfigWire(c.withDefaults()))
}

// UnmarshalJSON decodes a config strictly: unknown fields are rejected (a
// typoed search knob must not silently plan a different experiment), with
// every decode error wrapping ErrInvalidConfig. It is the exact inverse of
// MarshalJSON — decoding canonical bytes yields a config whose problemKey
// and fingerprint match the original's bit for bit — but does not itself
// apply defaults, so sparse hand-written JSON behaves like the equivalent
// Go literal.
func (c *ExperimentConfig) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w experimentConfigWire
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("realhf: decode experiment config: %w: %w", err, ErrInvalidConfig)
	}
	*c = ExperimentConfig(w)
	return nil
}

// Fingerprint returns the config's canonical fingerprint: defaults are
// applied first, so every zero field and its explicit default value
// fingerprint identically, and two configs with equal fingerprints request
// the same deterministic solve. It is the Planner's plan-cache key and the
// plan service's singleflight coalescing key (session defaults such as
// ClusterConfig.Nodes are applied by Planner.Canonicalize before
// fingerprinting).
func (c ExperimentConfig) Fingerprint() string {
	return c.withDefaults().fingerprint()
}

// clusterConfigWire mirrors experimentConfigWire for ClusterConfig.
type clusterConfigWire ClusterConfig

// MarshalJSON emits the canonical session config: cache-capacity defaults
// applied, exactly what NewPlanner would run with.
func (cc ClusterConfig) MarshalJSON() ([]byte, error) {
	return json.Marshal(clusterConfigWire(cc.withDefaults()))
}

// UnmarshalJSON decodes a session config strictly, wrapping
// ErrInvalidConfig on malformed input.
func (cc *ClusterConfig) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w clusterConfigWire
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("realhf: decode cluster config: %w: %w", err, ErrInvalidConfig)
	}
	*cc = ClusterConfig(w)
	return nil
}

// MarshalPlan serializes the experiment's execution plan — the same bytes
// SavePlan writes to disk and the plan service returns over the wire. Feed
// them to Planner.LoadExperimentBytes (with the experiment's config) to
// rebuild a runnable Experiment.
//
// Only the plan travels: the config, estimator and diagnostics are
// reconstructed on load from the caller-supplied ExperimentConfig, so the
// other Experiment fields are deliberately outside these bytes.
//
//lint:realvet fieldcover -- plan-only wire format; the config side travels separately via ExperimentConfig's canonical JSON
func (e *Experiment) MarshalPlan() ([]byte, error) {
	return e.Plan.MarshalJSON()
}

// LoadExperimentBytes rebuilds a runnable Experiment from plan bytes
// produced by Experiment.MarshalPlan (equivalently: the contents of a
// SavePlan file, or a plan service response) — the in-memory twin of
// LoadExperiment. cfg reconstructs the dataflow graph and cost model; the
// stored cluster shape and model cast must agree with it.
func (p *Planner) LoadExperimentBytes(data []byte, cfg ExperimentConfig) (*Experiment, error) {
	return p.loadExperiment(data, "plan bytes", cfg)
}
