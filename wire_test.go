package realhf

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestExperimentConfigWireRoundTrip is the codec contract the plan service
// keys its caches and coalescing on: marshaling is canonical and stable,
// and a config that crosses the wire keeps its problemKey and fingerprint
// bit for bit.
func TestExperimentConfigWireRoundTrip(t *testing.T) {
	cfg := plannerConfig(3, 200)
	cfg.SearchTime = 90 * time.Millisecond
	cfg.PlanForOverlap = true

	first, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("marshaling the same config twice produced different bytes")
	}

	var decoded ExperimentConfig
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	redone, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, redone) {
		t.Errorf("marshal(decode(marshal(cfg))) != marshal(cfg):\n%s\nvs\n%s", first, redone)
	}
	if got, want := decoded.Fingerprint(), cfg.Fingerprint(); got != want {
		t.Errorf("fingerprint drifted across the wire:\n%s\nvs\n%s", got, want)
	}
	if got, want := decoded.withDefaults().problemKey(), cfg.withDefaults().problemKey(); got != want {
		t.Errorf("problemKey drifted across the wire:\n%s\nvs\n%s", got, want)
	}

	// The canonical form applies package defaults, so a sparse config and
	// its explicit-default twin fingerprint and marshal identically.
	sparse := ExperimentConfig{
		Nodes: 1, BatchSize: 64, PromptLen: 256, GenLen: 256,
		RPCs: PPORPCs("llama7b", "llama7b-critic"),
	}
	explicit := sparse.withDefaults()
	sb, err := json.Marshal(sparse)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := json.Marshal(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, eb) {
		t.Errorf("sparse and defaults-applied configs marshal differently:\n%s\nvs\n%s", sb, eb)
	}
	if sparse.Fingerprint() != explicit.Fingerprint() {
		t.Error("sparse and defaults-applied configs fingerprint differently")
	}
}

// TestExperimentConfigStrictDecode: unknown fields are rejected (a typoed
// knob must not silently plan a different experiment), wrapping
// ErrInvalidConfig.
func TestExperimentConfigStrictDecode(t *testing.T) {
	var cfg ExperimentConfig
	err := json.Unmarshal([]byte(`{"batch_size":64,"search_stepz":100}`), &cfg)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown field decoded with err = %v, want wrapped ErrInvalidConfig", err)
	}
	var cc ClusterConfig
	if err := json.Unmarshal([]byte(`{"bogus":1}`), &cc); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown cluster field decoded with err = %v, want wrapped ErrInvalidConfig", err)
	}
}

// TestInterfaceTypeJSON: interface types travel by paper name, decode
// case-insensitively, and reject unknown names with ErrInvalidConfig.
func TestInterfaceTypeJSON(t *testing.T) {
	for typ, name := range map[InterfaceType]string{
		Generate: `"GENERATE"`, Inference: `"INFERENCE"`, TrainStep: `"TRAIN_STEP"`,
	} {
		b, err := json.Marshal(typ)
		if err != nil || string(b) != name {
			t.Errorf("marshal %v = %s, %v; want %s", typ, b, err, name)
		}
		var back InterfaceType
		if err := json.Unmarshal([]byte(strings.ToLower(name)), &back); err != nil || back != typ {
			t.Errorf("unmarshal %s = %v, %v; want %v", strings.ToLower(name), back, err, typ)
		}
	}
	var it InterfaceType
	if err := json.Unmarshal([]byte(`"TRAIN"`), &it); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown interface type decoded with err = %v, want wrapped ErrInvalidConfig", err)
	}
	if _, err := json.Marshal(InterfaceType(99)); err == nil {
		t.Error("out-of-range interface type marshaled without error")
	}
}

// TestClusterConfigWireRoundTrip: the session config marshals with its
// cache-capacity defaults applied and survives a round trip.
func TestClusterConfigWireRoundTrip(t *testing.T) {
	b, err := json.Marshal(ClusterConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterConfig
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	want := ClusterConfig{Nodes: 4}.withDefaults()
	if back != want {
		t.Errorf("round trip = %+v, want canonical %+v", back, want)
	}
	if back.PlanCacheEntries <= 0 || back.ProblemCacheEntries <= 0 {
		t.Errorf("canonical form lost cache-capacity defaults: %+v", back)
	}
}

// TestLoadExperimentBytesRoundTrip: MarshalPlan bytes rebuild an equivalent
// runnable experiment in memory — the wire twin of SavePlan/LoadExperiment.
func TestLoadExperimentBytesRoundTrip(t *testing.T) {
	p := NewPlanner(ClusterConfig{})
	cfg := plannerConfig(3, 200)
	exp, err := p.Plan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := exp.MarshalPlan()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := p.LoadExperimentBytes(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Plan.Fingerprint(), exp.Plan.Fingerprint(); got != want {
		t.Fatalf("loaded fingerprint %q != original %q", got, want)
	}
	origRep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	loadedRep, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if loadedRep.IterationTime != origRep.IterationTime {
		t.Errorf("loaded experiment runs in %v, original %v", loadedRep.IterationTime, origRep.IterationTime)
	}

	// Mismatched configs must be rejected, not silently re-cast.
	other := cfg
	other.Nodes = 2
	if _, err := p.LoadExperimentBytes(data, other); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("cluster-shape mismatch loaded with err = %v, want wrapped ErrInvalidConfig", err)
	}
	if _, err := p.LoadExperimentBytes([]byte(`{"version":99`), cfg); err == nil {
		t.Error("truncated plan bytes loaded without error")
	}
}
