package realhf

import (
	"errors"
	"fmt"
)

// The package's error taxonomy. Every planning entry point — Auto,
// Heuristic, Planner.Plan, Planner.Train, LoadExperiment — classifies its
// failures under one of these sentinels, so callers (and the plan server in
// internal/serve, which maps them onto HTTP status codes) dispatch with
// errors.Is instead of string matching:
//
//   - ErrInvalidConfig: the request itself is malformed — a non-positive
//     Nodes count, an empty or inconsistent RPC list, an unknown ModelType
//     or algorithm name, invalid calibration factors, or run options that
//     fail RunOptions.Validate (ErrInvalidRunOptions wraps ErrInvalidConfig,
//     so one errors.Is covers both). Retrying the identical request can
//     never succeed. HTTP 400.
//   - ErrInfeasibleMemory: the request was well-formed but no plan fits the
//     cluster's device memory — Experiment.FeasibleMemory reports it for a
//     solved experiment whose best plan still exceeds HBM. Retrying needs a
//     different workload or a bigger cluster. HTTP 422.
//   - ErrSolveCanceled: the solve was abandoned — the caller's context was
//     canceled or its deadline expired before or during the search. The
//     context cause (context.Canceled or context.DeadlineExceeded) stays in
//     the chain, so errors.Is distinguishes disconnects from timeouts.
//     HTTP 499.
//   - ErrWorkerLost: a campaign's worker fleet lost a device and could not
//     recover — the Trainer shrinks onto the survivors automatically, so
//     this sentinel only surfaces when no survivors remain (or recovery
//     itself failed). The runtime's typed *runtime.ErrWorkerLost (which
//     carries the GPU index) stays in the chain for errors.As. Retrying
//     needs capacity the caller must supply. HTTP 503.
var (
	// ErrInvalidConfig is wrapped by every rejection of a malformed
	// ExperimentConfig, RPC list, option set or calibration.
	ErrInvalidConfig = errors.New("invalid experiment config")
	// ErrInfeasibleMemory is wrapped when no memory-feasible plan exists for
	// a workload on its cluster (the searched optimum still overflows HBM).
	ErrInfeasibleMemory = errors.New("no memory-feasible plan")
	// ErrSolveCanceled is wrapped when a plan request is abandoned by
	// context cancellation or deadline expiry, before or during the solve.
	ErrSolveCanceled = errors.New("solve canceled")
	// ErrWorkerLost is wrapped when a training campaign loses a worker it
	// cannot recover from: the last surviving node died, or the
	// shrink-replan onto the survivor mesh failed. Recoverable losses are
	// absorbed by the Trainer (shrink-replan) and reported through
	// IterationReport.WorkerLost instead of an error.
	ErrWorkerLost = errors.New("worker lost")
)

// ErrInvalidRunOptions is wrapped by every rejection of malformed
// RunOptions, so callers can errors.Is across Run, RunWith, WithRunOptions
// and the Trainer options. It is itself part of the config taxonomy:
// errors.Is(err, ErrInvalidConfig) is true for every run-option rejection.
var ErrInvalidRunOptions = fmt.Errorf("%w: invalid run options", ErrInvalidConfig)

// ErrTrainerClosed is wrapped by every Trainer method called after Close.
// The session's resources are released; callers should open a new Trainer
// rather than retry.
var ErrTrainerClosed = errors.New("trainer is closed")

// FeasibleMemory reports whether the experiment's chosen plan fits device
// memory according to the planner's estimate: nil when it does, an error
// wrapping ErrInfeasibleMemory (with the peak-device demand and the HBM
// capacity) when even the best plan found would OOM. A non-nil error means
// the workload needs a smaller batch/sequence length or a larger cluster —
// re-searching the same problem cannot help.
func (e *Experiment) FeasibleMemory() error {
	if e.Estimate == nil || !e.Estimate.OOM {
		return nil
	}
	return fmt.Errorf("realhf: %w: best plan needs %.1f GiB on its most loaded device, cluster GPUs have %.1f GiB",
		ErrInfeasibleMemory,
		float64(e.Estimate.MaxMem)/(1<<30),
		float64(e.Cluster.GPU.MemoryBytes)/(1<<30))
}
